package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// CommPattern is an NPB kernel's dominant communication structure.
type CommPattern int

const (
	// PatternNeighbor: structured-grid boundary exchanges (BT, LU).
	PatternNeighbor CommPattern = iota
	// PatternAllreduce: dot products and convergence tests (CG).
	PatternAllreduce
	// PatternAlltoall: global transposes (FT).
	PatternAlltoall
)

// NPB models one NAS Parallel Benchmark kernel as alternating compute and
// communication phases. The per-iteration constants are calibrated so the
// class D / 64-process baselines land near the paper's Fig. 7 bars on the
// simulated AGC cluster (see EXPERIMENTS.md for the calibration table).
type NPB struct {
	Kernel string // "BT", "CG", "FT", "LU"
	Class  string // "D"
	// Iterations is the kernel's time-step count.
	Iterations int
	// ComputePerIter is core-seconds of computation per rank per step.
	ComputePerIter float64
	// CommBytes is the per-message payload of the pattern per step.
	CommBytes float64
	// ExchangesPerIter is how many pattern rounds run per step.
	ExchangesPerIter int
	// Pattern selects the communication structure.
	Pattern CommPattern
	// FootprintPerVM is the guest-resident working set per VM; NPB data
	// is floating-point state, essentially incompressible (uniformity
	// 0.05).
	FootprintPerVM float64

	// IterDone, when non-nil, is called by rank 0 after each step with
	// the step index and its elapsed time.
	IterDone func(step int, elapsed sim.Time)

	// rows are FT's transpose communicators (a √n × √n process grid; each
	// transpose is an all-to-all within a row), built lazily on first use.
	rows map[int]*mpi.Comm
	// rowSize is the grid's row length (0 until built; −1 when n is not
	// a perfect square and FT falls back to a world all-to-all).
	rowSize int
}

// transposeComms builds (once) the row communicators of the FT process
// grid. NPB FT distributes a 3-D array over a 2-D grid; each of the two
// per-iteration transposes is an MPI_Alltoall within a row.
func (b *NPB) transposeComms(job *mpi.Job) {
	if b.rowSize != 0 {
		return
	}
	n := job.Size()
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		b.rowSize = -1 // not a square grid: world all-to-all fallback
		return
	}
	b.rowSize = side
	b.rows = job.Split(func(wr int) int { return wr / side })
}

// NPBClassD returns the calibrated class D kernel for 64 ranks (8 VMs × 8
// ranks in the paper's Fig. 7 setup). Footprints span the paper's quoted
// 2.3–16 GB per VM.
func NPBClassD(kernel string) (*NPB, error) {
	switch kernel {
	case "BT":
		return &NPB{Kernel: "BT", Class: "D", Iterations: 250,
			ComputePerIter: 3.40, CommBytes: 10e6, ExchangesPerIter: 6,
			Pattern: PatternNeighbor, FootprintPerVM: 8.2e9}, nil
	case "CG":
		return &NPB{Kernel: "CG", Class: "D", Iterations: 100,
			ComputePerIter: 6.80, CommBytes: 5e6, ExchangesPerIter: 2,
			Pattern: PatternAllreduce, FootprintPerVM: 2.3e9}, nil
	case "FT":
		return &NPB{Kernel: "FT", Class: "D", Iterations: 25,
			ComputePerIter: 18.0, CommBytes: 20e6, ExchangesPerIter: 2,
			Pattern: PatternAlltoall, FootprintPerVM: 16e9}, nil
	case "LU":
		return &NPB{Kernel: "LU", Class: "D", Iterations: 300,
			ComputePerIter: 2.10, CommBytes: 0.2e6, ExchangesPerIter: 8,
			Pattern: PatternNeighbor, FootprintPerVM: 4.6e9}, nil
	default:
		return nil, fmt.Errorf("workloads: unknown NPB kernel %q", kernel)
	}
}

// NPBUniformity is the compressible fraction of NPB working sets.
const NPBUniformity = 0.05

// Name implements Workload.
func (b *NPB) Name() string { return "npb-" + b.Kernel }

// Install implements Workload.
func (b *NPB) Install(job *mpi.Job) error {
	// A numeric kernel re-touches its working set every few steps.
	return installPerVM(job, b.Name(), b.FootprintPerVM, NPBUniformity, b.FootprintPerVM)
}

// Uninstall removes the kernel's regions.
func (b *NPB) Uninstall(job *mpi.Job) { uninstallPerVM(job, b.Name()) }

// Body implements Workload.
func (b *NPB) Body(p *sim.Proc, r *mpi.Rank) {
	n := r.Job().Size()
	id := r.RankID()
	for step := 0; step < b.Iterations; step++ {
		start := p.Now()
		r.FTProbe(p)
		r.Compute(p, b.ComputePerIter)
		switch b.Pattern {
		case PatternNeighbor:
			right := (id + 1) % n
			left := (id - 1 + n) % n
			for e := 0; e < b.ExchangesPerIter; e++ {
				if _, err := r.Sendrecv(p, right, 100+e, b.CommBytes, left, 100+e); err != nil {
					panic(fmt.Sprintf("npb %s rank %d: %v", b.Kernel, id, err))
				}
			}
		case PatternAllreduce:
			for e := 0; e < b.ExchangesPerIter; e++ {
				if err := r.Allreduce(p, 8); err != nil { // scalar dot products
					panic(fmt.Sprintf("npb %s rank %d: %v", b.Kernel, id, err))
				}
			}
			right := (id + 1) % n
			left := (id - 1 + n) % n
			if _, err := r.Sendrecv(p, right, 200, b.CommBytes, left, 200); err != nil {
				panic(fmt.Sprintf("npb %s rank %d: %v", b.Kernel, id, err))
			}
		case PatternAlltoall:
			b.transposeComms(r.Job())
			for e := 0; e < b.ExchangesPerIter; e++ {
				if b.rowSize > 0 {
					row := b.rows[id/b.rowSize]
					if err := row.Alltoall(p, r, b.CommBytes/float64(b.rowSize)); err != nil {
						panic(fmt.Sprintf("npb %s rank %d: %v", b.Kernel, id, err))
					}
				} else if err := r.Alltoall(p, b.CommBytes/float64(n)); err != nil {
					panic(fmt.Sprintf("npb %s rank %d: %v", b.Kernel, id, err))
				}
			}
		}
		if b.IterDone != nil && id == 0 {
			b.IterDone(step, p.Now()-start)
		}
	}
}
