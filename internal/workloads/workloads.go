// Package workloads implements the paper's benchmark applications as
// simulation workloads: the memtest micro-benchmark (§IV-B), the NAS
// Parallel Benchmarks BT/CG/FT/LU class D (§IV-B3), and the
// broadcast+reduce iteration benchmark of the fallback/recovery experiment
// (§IV-C). Computation is charged to the simulated host CPUs and all
// communication goes through the simulated MPI stack, so migrations
// interact with the workloads exactly as in the paper.
package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Workload is a benchmark program runnable on an MPI job.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Install declares the workload's guest memory regions.
	Install(job *mpi.Job) error
	// Body is the per-rank main function. It must call FTProbe at
	// iteration boundaries so pending checkpoints can coordinate.
	Body(p *sim.Proc, r *mpi.Rank)
}

// Run installs the workload and launches one process per rank. The
// returned future resolves when every rank has finished.
func Run(job *mpi.Job, w Workload) (*sim.Future[struct{}], error) {
	if err := w.Install(job); err != nil {
		return nil, err
	}
	return job.Launch(w.Name(), w.Body), nil
}

// installPerVM adds one region per VM, sized per VM (helper shared by the
// workloads; region name is prefixed to avoid collisions across runs).
func installPerVM(job *mpi.Job, name string, bytes, uniformity, dirtyRate float64) error {
	for _, vm := range job.VMs() {
		if _, err := vm.Memory().AddRegion(name, bytes, uniformity, dirtyRate); err != nil {
			return fmt.Errorf("workloads: install %s on %s: %w", name, vm.Name(), err)
		}
	}
	return nil
}

// uninstallPerVM removes the named region from every VM.
func uninstallPerVM(job *mpi.Job, name string) {
	for _, vm := range job.VMs() {
		vm.Memory().RemoveRegion(name)
	}
}

// MemWriteBandwidth is a single core's sequential write throughput on the
// paper's Xeon E5540 nodes (bytes per core-second).
const MemWriteBandwidth = 3e9

// Memtest sequentially writes a pattern over an in-guest array — the
// paper's memory-intensive micro-benchmark. Pattern pages are mostly
// uniform, so QEMU's zero-page compression absorbs ≈82 % of the footprint
// on migration (the calibration that reproduces Fig. 6's sub-linear
// growth; see EXPERIMENTS.md).
type Memtest struct {
	// ArrayBytes is the per-VM array size (2–16 GB in Fig. 6).
	ArrayBytes float64
	// Passes is how many full write passes to run.
	Passes int
	// Uniformity of the written pattern (default 0.82).
	Uniformity float64
}

// MemtestUniformity is the calibrated fraction of memtest pages that
// compress as uniform data.
const MemtestUniformity = 0.82

// Name implements Workload.
func (m *Memtest) Name() string { return "memtest" }

// Install implements Workload.
func (m *Memtest) Install(job *mpi.Job) error {
	u := m.Uniformity
	if u == 0 {
		u = MemtestUniformity
	}
	// The writer re-dirties the array at its full write bandwidth.
	return installPerVM(job, "memtest", m.ArrayBytes, u, MemWriteBandwidth)
}

// Body implements Workload: each pass writes the whole array; ranks probe
// for pending checkpoints between passes.
func (m *Memtest) Body(p *sim.Proc, r *mpi.Rank) {
	perRank := m.ArrayBytes / float64(r.Job().RanksPerVM())
	for pass := 0; pass < m.Passes; pass++ {
		r.FTProbe(p)
		r.Compute(p, perRank/MemWriteBandwidth)
	}
}

// Uninstall removes the workload's regions (between experiment trials).
func (m *Memtest) Uninstall(job *mpi.Job) { uninstallPerVM(job, "memtest") }
