package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// IMB is an Intel-MPI-Benchmarks-style microbenchmark suite: a message-size
// sweep of a chosen pattern, reporting per-size latency and throughput.
// It is the tool a user of this library reaches for to characterize a
// deployment before and after an interconnect-transparent migration.
type IMB struct {
	// Pattern is one of "pingpong", "exchange", "allreduce", "bcast",
	// "alltoall".
	Pattern string
	// Sizes are the message sizes to sweep (bytes). Defaults to powers of
	// four from 64 B to 16 MB.
	Sizes []float64
	// Repetitions per size (default 10).
	Repetitions int

	// Results are appended per size by rank 0.
	Results []IMBResult
}

// IMBResult is one row of the sweep.
type IMBResult struct {
	Bytes float64
	// AvgTime is the mean per-operation completion time at rank 0.
	AvgTime sim.Time
	// Throughput is Bytes/AvgTime (B/s); for collective patterns it is
	// per-rank payload throughput.
	Throughput float64
}

// DefaultIMBSizes is the standard sweep.
func DefaultIMBSizes() []float64 {
	var sizes []float64
	for b := 64.0; b <= 16e6; b *= 4 {
		sizes = append(sizes, b)
	}
	return sizes
}

// Name implements Workload.
func (b *IMB) Name() string { return "imb-" + b.Pattern }

// Install implements Workload (microbenchmarks have negligible footprint).
func (b *IMB) Install(job *mpi.Job) error {
	switch b.Pattern {
	case "pingpong", "exchange", "allreduce", "bcast", "alltoall":
	default:
		return fmt.Errorf("workloads: unknown IMB pattern %q", b.Pattern)
	}
	if b.Pattern == "pingpong" && job.Size() < 2 {
		return fmt.Errorf("workloads: pingpong needs ≥2 ranks")
	}
	return nil
}

// Body implements Workload.
func (b *IMB) Body(p *sim.Proc, r *mpi.Rank) {
	sizes := b.Sizes
	if len(sizes) == 0 {
		sizes = DefaultIMBSizes()
	}
	reps := b.Repetitions
	if reps <= 0 {
		reps = 10
	}
	n := r.Job().Size()
	id := r.RankID()
	for _, size := range sizes {
		r.FTProbe(p)
		// Align before timing.
		if err := r.BarrierColl(p); err != nil {
			panic(fmt.Sprintf("imb barrier: %v", err))
		}
		start := p.Now()
		for rep := 0; rep < reps; rep++ {
			var err error
			switch b.Pattern {
			case "pingpong":
				// Only ranks 0 and 1 participate; others idle at the
				// closing barrier (IMB semantics).
				switch id {
				case 0:
					if err = r.Send(p, 1, 10, size); err == nil {
						_, err = r.Recv(p, 1, 11)
					}
				case 1:
					if _, err = r.Recv(p, 0, 10); err == nil {
						err = r.Send(p, 0, 11, size)
					}
				}
			case "exchange":
				right := (id + 1) % n
				left := (id - 1 + n) % n
				_, err = r.Sendrecv(p, right, 12, size, left, 12)
			case "allreduce":
				err = r.Allreduce(p, size)
			case "bcast":
				err = r.Bcast(p, 0, size)
			case "alltoall":
				err = r.Alltoall(p, size/float64(n))
			}
			if err != nil {
				panic(fmt.Sprintf("imb %s rank %d: %v", b.Pattern, id, err))
			}
		}
		elapsed := p.Now() - start
		if err := r.BarrierColl(p); err != nil {
			panic(fmt.Sprintf("imb barrier: %v", err))
		}
		if id == 0 {
			avg := elapsed / sim.Time(reps)
			if b.Pattern == "pingpong" {
				avg /= 2 // report one-way half round trip, as IMB does
			}
			res := IMBResult{Bytes: size, AvgTime: avg}
			if avg > 0 {
				res.Throughput = size / avg.Seconds()
			}
			b.Results = append(b.Results, res)
		}
	}
}
