package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// BcastReduce is the fallback/recovery experiment's application (§IV-C):
// "a simple MPI program that repeatedly broadcasts and reduces 8 GB data
// per a node". Each VM holds an 8 GB buffer; per step the buffer is
// broadcast from rank 0 and reduced back, with each rank handling its
// 1/ranksPerVM share. Rank 0 records per-step elapsed times — the bars of
// Fig. 8.
type BcastReduce struct {
	// BytesPerNode is the per-VM data volume (8 GB in the paper).
	BytesPerNode float64
	// Steps is the iteration count (the paper plots 40).
	Steps int
	// StepDone, when non-nil, receives rank 0's per-step elapsed time.
	StepDone func(step int, elapsed sim.Time)
	// BeforeStep, when non-nil, runs on every rank at the top of each
	// step, before FTProbe. Experiment harnesses use it as a gate to
	// inject migration triggers at exact step boundaries (the paper
	// launches Ninja migration every 10 iteration steps).
	BeforeStep func(p *sim.Proc, r *mpi.Rank, step int)
}

// Name implements Workload.
func (b *BcastReduce) Name() string { return "bcast-reduce" }

// Install implements Workload: the buffer is numeric data (essentially
// incompressible) that every step rewrites.
func (b *BcastReduce) Install(job *mpi.Job) error {
	return installPerVM(job, b.Name(), b.BytesPerNode, NPBUniformity, b.BytesPerNode)
}

// Uninstall removes the buffer regions.
func (b *BcastReduce) Uninstall(job *mpi.Job) { uninstallPerVM(job, b.Name()) }

// Body implements Workload.
func (b *BcastReduce) Body(p *sim.Proc, r *mpi.Rank) {
	share := b.BytesPerNode / float64(r.Job().RanksPerVM())
	for step := 0; step < b.Steps; step++ {
		start := p.Now()
		if b.BeforeStep != nil {
			b.BeforeStep(p, r, step)
		}
		r.FTProbe(p)
		if err := r.Bcast(p, 0, share); err != nil {
			panic(fmt.Sprintf("bcast-reduce rank %d step %d: %v", r.RankID(), step, err))
		}
		if err := r.Reduce(p, 0, share); err != nil {
			panic(fmt.Sprintf("bcast-reduce rank %d step %d: %v", r.RankID(), step, err))
		}
		// All ranks align on step boundaries (the measured program prints
		// per-iteration times, implying a synchronizing pattern).
		if err := r.BarrierColl(p); err != nil {
			panic(fmt.Sprintf("bcast-reduce rank %d step %d: %v", r.RankID(), step, err))
		}
		if b.StepDone != nil && r.RankID() == 0 {
			b.StepDone(step, p.Now()-start)
		}
	}
}
