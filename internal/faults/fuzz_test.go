package faults

import (
	"testing"
)

// FuzzParsePlan hunts parser panics and canonicalization bugs with a
// roundtrip oracle: any string ParsePlan accepts must render (String) to a
// canonical form that reparses successfully and is a fixed point of
// another parse → String pass. Rejected inputs just need to not panic.
func FuzzParsePlan(f *testing.F) {
	for _, raw := range Builtin {
		f.Add(raw)
	}
	for _, name := range BuiltinNames() {
		f.Add(name)
	}
	f.Add("seed=7;drop-event:event=DEVICE_DELETED")
	f.Add("migrate-abort@60s:vm=vm00,pass=2")
	f.Add("nfs-outage@300s+45s;node-crash@310s:node=agc-dst-00")
	f.Add("ib-train-stall@1000000s") // %gs used to render this as 1e+06s
	f.Add("nfs-slow@2562047h47m16.854775806s:factor=1e300")
	f.Add("link-flap@1s+2s+3s")
	f.Add("node-crash@20s:node=a=b,count=-1;seed=-9")
	f.Fuzz(func(t *testing.T, s string) {
		pl, err := ParsePlan(s)
		if err != nil {
			return
		}
		c1 := pl.String()
		pl2, err := ParsePlan(c1)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", c1, s, err)
		}
		if c2 := pl2.String(); c1 != c2 {
			t.Fatalf("canonicalization not idempotent for %q:\n first: %q\nsecond: %q", s, c1, c2)
		}
	})
}

// TestPlanRoundtripLargeTimes pins the duration-rendering regression: plans
// with times beyond %g's no-exponent range must roundtrip exactly.
func TestPlanRoundtripLargeTimes(t *testing.T) {
	for _, s := range []string{
		"ib-train-stall@1000000s",
		"nfs-slow@277777h46m40s+1000000s:factor=10",
		"node-crash@1000000000s+0.000000001s",
	} {
		pl, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		c := pl.String()
		pl2, err := ParsePlan(c)
		if err != nil {
			t.Fatalf("canonical %q of %q does not reparse: %v", c, s, err)
		}
		if pl2.Seed != pl.Seed || len(pl2.Specs) != len(pl.Specs) {
			t.Fatalf("roundtrip changed plan shape: %q -> %q", s, c)
		}
		for i := range pl.Specs {
			if pl.Specs[i] != pl2.Specs[i] {
				t.Fatalf("spec %d changed in roundtrip of %q:\n before: %+v\n after:  %+v",
					i, s, pl.Specs[i], pl2.Specs[i])
			}
		}
	}
}
