// Package faults is a deterministic, DES-clock-driven fault-injection
// registry for the simulated testbed. A Plan is a script of fault Specs
// (parsed from a compact string form or built programmatically); an
// Injector binds the plan to a concrete environment — VMs, nodes, the
// shared store — and arms it on the simulation clock. Nothing here reads
// the wall clock or an unseeded PRNG: given the same plan (including its
// seed) and the same deployment, every fault fires at the same simulated
// instant, so failure experiments replay bit-for-bit.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Kind enumerates the injectable fault classes, one per failure-prone
// boundary of the stack.
type Kind string

const (
	// KindMigrateAbort kills a live migration mid-precopy-round (the
	// destination QEMU dies with the socket). Target: VM. Pass selects
	// the round (default 2); Count how many migrations to kill.
	KindMigrateAbort Kind = "migrate-abort"
	// KindQMPError makes a QMP command (Arg, default "device_add") fail
	// with a GenericError. Target: VM. Count bounds occurrences.
	KindQMPError Kind = "qmp-error"
	// KindDropEvent swallows an asynchronous QMP completion event (Arg,
	// default "DEVICE_DELETED"): the operation happens but its
	// notification is lost, wedging naive waiters forever. Target: VM.
	KindDropEvent Kind = "drop-event"
	// KindTrainStall delays the next IB port training by For (default
	// 120 s) — a port stuck in POLLING past the normal ≈30 s window.
	// Target: node (empty = every HCA in the environment).
	KindTrainStall Kind = "ib-train-stall"
	// KindLinkFlap bounces an Active IB port at time At (PowerOff +
	// PowerOn: full retraining). Target: node (empty = every HCA).
	KindLinkFlap Kind = "link-flap"
	// KindNFSSlow multiplies shared-store service time by Factor
	// (default 10) during [At, At+For] (For default 60 s).
	KindNFSSlow Kind = "nfs-slow"
	// KindNFSOutage takes the shared store offline during [At, At+For]
	// (For default 60 s): reads and writes fail with storage.ErrOffline.
	KindNFSOutage Kind = "nfs-outage"
	// KindNodeCrash fails a node at At (allocations refuse, migrations
	// toward it abort). For > 0 restores it at At+For. Target: node
	// (empty = the first node in the environment's victim list).
	KindNodeCrash Kind = "node-crash"
	// KindQPResyncStall delays the next RDMA-native QP resync on the
	// targeted HCA by For (default 10 s) — enough to blow the orchestration
	// resync window and demote that VM to the hotplug rung. Target: node
	// (the migration destination; empty = every HCA).
	KindQPResyncStall Kind = "qp-resync-stall"
	// KindQPStale marks the targeted HCA's next QP snapshot as stale at
	// restore time (epoch skew between capture and replay), demoting the
	// RDMA-native rung. Target: node (the migration *source*; empty =
	// every HCA).
	KindQPStale Kind = "qp-stale"
	// KindHCAMismatch makes the targeted HCA reject the next QP restore as
	// incompatible hardware (heterogeneous sites: different HCA
	// generation/firmware), demoting the RDMA-native rung. Target: node
	// (the migration destination; empty = every HCA).
	KindHCAMismatch Kind = "hca-mismatch"
)

// knownKinds lists every Kind for validation and help text.
var knownKinds = []Kind{
	KindMigrateAbort, KindQMPError, KindDropEvent, KindTrainStall,
	KindLinkFlap, KindNFSSlow, KindNFSOutage, KindNodeCrash,
	KindQPResyncStall, KindQPStale, KindHCAMismatch,
}

// Spec is one scripted fault.
type Spec struct {
	Kind Kind
	// At is when the fault arms/fires on the simulation clock (absolute;
	// 0 = active from the start).
	At sim.Time
	// For is the fault's duration or magnitude-in-time, kind-specific
	// (outage window, extra training stall, downtime before restore).
	For sim.Time
	// Target names the victim VM or node; empty picks per the kind's
	// default (seeded-random VM, or every/first node).
	Target string
	// Arg is the kind-specific string argument (QMP command or event).
	Arg string
	// Pass is the precopy round a migrate-abort strikes (default 2).
	Pass int
	// Count bounds how many times the fault fires (default 1).
	Count int
	// Factor is the nfs-slow multiplier (default 10).
	Factor float64
}

func (s Spec) count() int {
	if s.Count < 1 {
		return 1
	}
	return s.Count
}

func (s Spec) pass() int {
	if s.Pass < 1 {
		return 2
	}
	return s.Pass
}

func (s Spec) window() sim.Time {
	if s.For <= 0 {
		return 60 * sim.Second
	}
	return s.For
}

func (s Spec) stall() sim.Time {
	if s.For <= 0 {
		return 120 * sim.Second
	}
	return s.For
}

func (s Spec) resyncStall() sim.Time {
	if s.For <= 0 {
		return 10 * sim.Second
	}
	return s.For
}

func (s Spec) factor() float64 {
	if s.Factor <= 1 {
		return 10
	}
	return s.Factor
}

func (s Spec) arg(def string) string {
	if s.Arg == "" {
		return def
	}
	return s.Arg
}

// String renders the spec in the plan-string syntax.
func (s Spec) String() string {
	out := string(s.Kind)
	// Render times as exact Go durations: %g seconds would lose nanosecond
	// precision and emit exponent forms ("1e+06s") that time.ParseDuration
	// rejects, breaking the parse → String → parse roundtrip.
	if s.At > 0 {
		out += "@" + time.Duration(s.At).String()
	}
	if s.For > 0 {
		out += "+" + time.Duration(s.For).String()
	}
	var opts []string
	if s.Target != "" {
		opts = append(opts, "target="+s.Target)
	}
	if s.Arg != "" {
		opts = append(opts, "arg="+s.Arg)
	}
	if s.Pass > 0 {
		opts = append(opts, fmt.Sprintf("pass=%d", s.Pass))
	}
	if s.Count > 0 {
		opts = append(opts, fmt.Sprintf("count=%d", s.Count))
	}
	if s.Factor > 0 {
		opts = append(opts, fmt.Sprintf("factor=%g", s.Factor))
	}
	if len(opts) > 0 {
		out += ":" + strings.Join(opts, ",")
	}
	return out
}

// Plan is a named, seeded script of faults.
type Plan struct {
	Name  string
	Seed  int64
	Specs []Spec
}

// Empty reports whether the plan injects nothing (the control plan).
func (p Plan) Empty() bool { return len(p.Specs) == 0 }

// String renders the plan in parseable form.
func (p Plan) String() string {
	parts := make([]string, 0, len(p.Specs)+1)
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, s := range p.Specs {
		parts = append(parts, s.String())
	}
	if len(parts) == 0 {
		return "none"
	}
	out := strings.Join(parts, ";")
	// A bare kind ("nfs-outage") collides with the builtin plan namespace
	// and would be re-expanded to the builtin's defaults on reparse; a
	// trailing separator keeps the rendered plan literal (empty items are
	// skipped by ParsePlan).
	if _, ok := Builtin[out]; ok {
		out += ";"
	}
	return out
}

// Builtin maps plan names to their spec strings, for CLI use
// (ninjasim -faults=<name> and the ext-faults matrix scenarios).
var Builtin = map[string]string{
	"none":                "",
	"drop-device-deleted": "drop-event:arg=DEVICE_DELETED",
	"qmp-error-attach":    "qmp-error:arg=device_add",
	"qmp-error-detach":    "qmp-error:arg=device_del",
	"migrate-abort":       "migrate-abort:pass=2",
	"train-stall":         "ib-train-stall+120s",
	"link-flap":           "link-flap@40s",
	"nfs-slow":            "nfs-slow@30s+60s:factor=10",
	"nfs-outage":          "nfs-outage@30s+45s",
	"node-crash":          "node-crash@20s",
	"qp-resync-stall":     "qp-resync-stall+10s",
	"qp-stale":            "qp-stale:count=1",
	"hca-mismatch":        "hca-mismatch:count=1",
}

// BuiltinNames returns the builtin plan names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(Builtin))
	for n := range Builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrBadPlan reports an unparseable plan string.
var ErrBadPlan = errors.New("faults: bad plan")

// ParsePlan parses the compact plan syntax:
//
//	plan  := "none" | builtin-name | item (";" item)*
//	item  := "seed=" int | spec
//	spec  := kind ["@" dur] ["+" dur] [":" key "=" val ("," key "=" val)*]
//	keys  := vm | node | target | cmd | event | arg | pass | count | factor
//
// Durations use Go syntax ("45s", "2m"). Examples:
//
//	migrate-abort@60s:vm=vm00,pass=2
//	nfs-outage@300s+45s;node-crash@310s:node=agc-dst-00
//	seed=7;drop-event:event=DEVICE_DELETED
func ParsePlan(s string) (Plan, error) {
	pl := Plan{Name: strings.TrimSpace(s)}
	s = pl.Name
	if s == "" || s == "none" {
		pl.Name = "none"
		return pl, nil
	}
	if raw, ok := Builtin[s]; ok {
		pl2, err := ParsePlan(raw)
		pl2.Name = s
		return pl2, err
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return pl, fmt.Errorf("%w: seed %q", ErrBadPlan, v)
			}
			pl.Seed = seed
			continue
		}
		spec, err := parseSpec(part)
		if err != nil {
			return pl, err
		}
		pl.Specs = append(pl.Specs, spec)
	}
	return pl, nil
}

func parseSpec(s string) (Spec, error) {
	var spec Spec
	head, opts, hasOpts := strings.Cut(s, ":")

	// head := kind[@at][+for]
	rest := head
	if i := strings.IndexAny(rest, "@+"); i >= 0 {
		spec.Kind = Kind(rest[:i])
		rest = rest[i:]
	} else {
		spec.Kind = Kind(rest)
		rest = ""
	}
	if !validKind(spec.Kind) {
		return spec, fmt.Errorf("%w: unknown kind %q (known: %v)", ErrBadPlan, spec.Kind, knownKinds)
	}
	if v, ok := strings.CutPrefix(rest, "@"); ok {
		at, tail, err := parseDur(v)
		if err != nil {
			return spec, fmt.Errorf("%w: %s: %v", ErrBadPlan, s, err)
		}
		spec.At = at
		rest = tail
	}
	if v, ok := strings.CutPrefix(rest, "+"); ok {
		dur, tail, err := parseDur(v)
		if err != nil {
			return spec, fmt.Errorf("%w: %s: %v", ErrBadPlan, s, err)
		}
		spec.For = dur
		rest = tail
	}
	if rest != "" {
		return spec, fmt.Errorf("%w: trailing %q in %q", ErrBadPlan, rest, s)
	}

	if !hasOpts {
		return spec, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("%w: option %q in %q", ErrBadPlan, kv, s)
		}
		switch key {
		case "vm", "node", "target":
			spec.Target = val
		case "cmd", "event", "arg":
			spec.Arg = val
		case "pass":
			n, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("%w: pass %q", ErrBadPlan, val)
			}
			spec.Pass = n
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("%w: count %q", ErrBadPlan, val)
			}
			spec.Count = n
		case "factor":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return spec, fmt.Errorf("%w: factor %q", ErrBadPlan, val)
			}
			spec.Factor = f
		default:
			return spec, fmt.Errorf("%w: unknown option %q in %q", ErrBadPlan, key, s)
		}
	}
	return spec, nil
}

// parseDur consumes a leading Go duration from v, returning the value and
// the unconsumed tail (the next '+' section, if any).
func parseDur(v string) (sim.Time, string, error) {
	end := len(v)
	if i := strings.IndexByte(v, '+'); i >= 0 {
		end = i
	}
	d, err := time.ParseDuration(v[:end])
	if err != nil {
		return 0, "", err
	}
	if d < 0 {
		return 0, "", fmt.Errorf("negative duration %q", v[:end])
	}
	return sim.Time(d), v[end:], nil
}

func validKind(k Kind) bool {
	for _, known := range knownKinds {
		if k == known {
			return true
		}
	}
	return false
}
