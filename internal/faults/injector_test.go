package faults

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestInjectorDoubleArm(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	c := tb.AddCluster("c", 1, hw.AGCNodeSpec)
	in := NewInjector(k, Plan{Specs: []Spec{{Kind: KindNodeCrash, At: sim.Second}}},
		Env{Nodes: c.Nodes})
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm(); !errors.Is(err, ErrArmed) {
		t.Fatalf("second Arm err = %v, want ErrArmed", err)
	}
}

func TestInjectorNodeCrashAndRestore(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	c := tb.AddCluster("c", 2, hw.AGCNodeSpec)
	logged := 0
	in := NewInjector(k, Plan{Specs: []Spec{
		{Kind: KindNodeCrash, Target: c.Nodes[1].Name, At: sim.Second, For: 2 * sim.Second},
	}}, Env{Nodes: c.Nodes, Log: func(kind, subject, detail string) { logged++ }})
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(1500 * sim.Millisecond)
	if !c.Nodes[1].Failed() {
		t.Fatal("node not failed at t=1.5s")
	}
	if c.Nodes[0].Failed() {
		t.Fatal("wrong victim: node 0 failed")
	}
	k.RunUntil(4 * sim.Second)
	if c.Nodes[1].Failed() {
		t.Fatal("node not restored at t=4s")
	}
	if logged != 1 || in.Fired() != 1 {
		t.Fatalf("logged %d / fired %d firings, want 1", logged, in.Fired())
	}
}

func TestInjectorNFSOutageWindow(t *testing.T) {
	k := sim.NewKernel()
	nfs := storage.NewNFS("nfs0")
	in := NewInjector(k, Plan{Specs: []Spec{
		{Kind: KindNFSOutage, At: sim.Second, For: 2 * sim.Second},
	}}, Env{Store: nfs})
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(1500 * sim.Millisecond)
	if !nfs.Offline() {
		t.Fatal("store online mid-outage")
	}
	k.RunUntil(4 * sim.Second)
	if nfs.Offline() {
		t.Fatal("store still offline after window")
	}
}

func TestInjectorUnknownTargets(t *testing.T) {
	k := sim.NewKernel()
	tb := hw.NewTestbed(k)
	c := tb.AddCluster("c", 1, hw.AGCNodeSpec)
	for _, plan := range []Plan{
		{Specs: []Spec{{Kind: KindNodeCrash, Target: "nope"}}},
		{Specs: []Spec{{Kind: KindQMPError, Target: "vmX"}}}, // no VMs in env
		{Specs: []Spec{{Kind: KindNFSSlow}}},                 // no store in env
	} {
		in := NewInjector(k, plan, Env{Nodes: c.Nodes})
		if err := in.Arm(); err == nil {
			t.Errorf("Arm(%v) succeeded, want error", plan.String())
		}
	}
}

func TestInjectorSeededDrawsAreDeterministic(t *testing.T) {
	// Random victim selection (pickVM with an empty target) draws from
	// the plan-seeded PRNG: two injectors with the same seed must draw
	// identical sequences, so replays pick identical victims.
	a := NewInjector(sim.NewKernel(), Plan{Seed: 42}, Env{})
	b := NewInjector(sim.NewKernel(), Plan{Seed: 42}, Env{})
	for i := 0; i < 8; i++ {
		if x, y := a.rng.Intn(1000), b.rng.Intn(1000); x != y {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, x, y)
		}
	}
}
