package faults

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestParsePlanFull(t *testing.T) {
	pl, err := ParsePlan("seed=7;migrate-abort@60s:vm=vm00,pass=1;nfs-outage@30s+45s;qmp-error:cmd=device_del,count=3")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Seed != 7 {
		t.Fatalf("Seed = %d, want 7", pl.Seed)
	}
	if len(pl.Specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(pl.Specs))
	}
	s := pl.Specs[0]
	if s.Kind != KindMigrateAbort || s.At != 60*sim.Second || s.Target != "vm00" || s.Pass != 1 {
		t.Fatalf("spec 0 = %+v", s)
	}
	s = pl.Specs[1]
	if s.Kind != KindNFSOutage || s.At != 30*sim.Second || s.For != 45*sim.Second {
		t.Fatalf("spec 1 = %+v", s)
	}
	s = pl.Specs[2]
	if s.Kind != KindQMPError || s.Arg != "device_del" || s.Count != 3 {
		t.Fatalf("spec 2 = %+v", s)
	}
}

func TestParsePlanEmptyAndNone(t *testing.T) {
	for _, in := range []string{"", "none", "  none  "} {
		pl, err := ParsePlan(in)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", in, err)
		}
		if !pl.Empty() || pl.Name != "none" {
			t.Fatalf("ParsePlan(%q) = %+v, want empty 'none' plan", in, pl)
		}
	}
}

func TestParsePlanBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		pl, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if pl.Name != name {
			t.Fatalf("builtin %q parsed with Name %q", name, pl.Name)
		}
		if name != "none" && pl.Empty() {
			t.Fatalf("builtin %q parsed to an empty plan", name)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, in := range []string{
		"no-such-kind@10s",
		"migrate-abort:wat=1",
		"migrate-abort@bogus",
		"migrate-abort:pass=x",
		"seed=zzz",
		"nfs-slow:factor=x",
	} {
		if _, err := ParsePlan(in); !errors.Is(err, ErrBadPlan) {
			t.Errorf("ParsePlan(%q) err = %v, want ErrBadPlan", in, err)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	orig := Spec{Kind: KindNFSSlow, At: 30 * sim.Second, For: 45 * sim.Second, Factor: 8}
	pl, err := ParsePlan(orig.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", orig.String(), err)
	}
	if len(pl.Specs) != 1 || pl.Specs[0] != orig {
		t.Fatalf("round trip %q → %+v, want %+v", orig.String(), pl.Specs, orig)
	}
}

func TestSpecDefaults(t *testing.T) {
	var s Spec
	if s.count() != 1 || s.pass() != 2 || s.window() != 60*sim.Second ||
		s.stall() != 120*sim.Second || s.factor() != 10 || s.arg("device_add") != "device_add" {
		t.Fatalf("zero-spec defaults wrong: count=%d pass=%d window=%v stall=%v factor=%g arg=%q",
			s.count(), s.pass(), s.window(), s.stall(), s.factor(), s.arg("device_add"))
	}
}
