package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vmm"
)

// Env is the blast surface an Injector may touch. Nodes is the victim
// list for node-scoped faults (crash, flap, stall) — pass the migration
// destinations there to model destination-side failures; Store is the
// shared NFS server, if any.
type Env struct {
	VMs   []*vmm.VM
	Nodes []*hw.Node
	Store *storage.NFS
	// Log, when non-nil, receives one call per fault firing (kind,
	// subject, detail) — wire it into the orchestrator's event log so
	// injections appear on the same timeline as recoveries.
	Log func(kind, subject, detail string)
}

// Injector binds a Plan to an environment and arms it on the simulation
// clock. Spec targets left empty resolve deterministically: VM-scoped
// faults pick via the plan's seeded PRNG over the name-sorted VM list;
// node-scoped faults hit every HCA (stall/flap) or the first victim
// (crash).
type Injector struct {
	k     *sim.Kernel
	plan  Plan
	env   Env
	rng   *rand.Rand
	armed bool
	fired int
}

// ErrArmed reports a double Arm.
var ErrArmed = errors.New("faults: plan already armed")

// NewInjector builds an injector for the plan over the environment.
func NewInjector(k *sim.Kernel, plan Plan, env Env) *Injector {
	return &Injector{
		k:    k,
		plan: plan,
		env:  env,
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}
}

// Plan returns the bound plan.
func (in *Injector) Plan() Plan { return in.plan }

// Fired returns how many fault firings have occurred so far.
func (in *Injector) Fired() int { return in.fired }

func (in *Injector) log(kind Kind, subject, detail string) {
	in.fired++
	if in.env.Log != nil {
		in.env.Log(string(kind), subject, detail)
	}
}

// armedSpec tracks a VM-hook spec's firing budget.
type armedSpec struct {
	spec  Spec
	fired int
}

// active reports whether the spec may fire now, without consuming budget.
func (a *armedSpec) active(now sim.Time) bool {
	return a.fired < a.spec.count() && now >= a.spec.At
}

// Arm resolves every spec's targets and schedules/installs the faults.
// Call once, before (or during) the run; specs whose At is already past
// fire immediately.
func (in *Injector) Arm() error {
	if in.armed {
		return ErrArmed
	}
	in.armed = true

	hooked := make(map[*vmm.VM][]*armedSpec)
	for _, s := range in.plan.Specs {
		s := s
		switch s.Kind {
		case KindMigrateAbort, KindQMPError, KindDropEvent:
			vm, err := in.pickVM(s.Target)
			if err != nil {
				return err
			}
			hooked[vm] = append(hooked[vm], &armedSpec{spec: s})

		case KindTrainStall:
			hcas, err := in.pickHCAs(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				for _, t := range hcas {
					t.hca.InjectTrainingStall(s.stall())
					in.log(s.Kind, t.name, fmt.Sprintf("next training stalls +%v", s.stall()))
				}
			})

		case KindLinkFlap:
			hcas, err := in.pickHCAs(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				for _, t := range hcas {
					t.hca.Flap()
					in.log(s.Kind, t.name, "port bounced; retraining")
				}
			})

		case KindNFSSlow:
			if in.env.Store == nil {
				return fmt.Errorf("faults: %s with no store in environment", s.Kind)
			}
			store, f, w := in.env.Store, s.factor(), s.window()
			in.schedule(s.At, func() {
				store.SetSlowdown(f)
				in.log(s.Kind, store.Name, fmt.Sprintf("service time ×%g for %v", f, w))
			})
			in.schedule(s.At+w, func() { store.SetSlowdown(1) })

		case KindNFSOutage:
			if in.env.Store == nil {
				return fmt.Errorf("faults: %s with no store in environment", s.Kind)
			}
			store, w := in.env.Store, s.window()
			in.schedule(s.At, func() {
				store.SetOffline(true)
				in.log(s.Kind, store.Name, fmt.Sprintf("offline for %v", w))
			})
			in.schedule(s.At+w, func() { store.SetOffline(false) })

		case KindQPResyncStall:
			hcas, err := in.pickHCAs(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				for _, t := range hcas {
					t.hca.InjectResyncStall(s.resyncStall())
					in.log(s.Kind, t.name, fmt.Sprintf("next QP resync stalls +%v", s.resyncStall()))
				}
			})

		case KindQPStale:
			hcas, err := in.pickHCAs(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				for _, t := range hcas {
					t.hca.InjectStaleQPState()
					in.log(s.Kind, t.name, "next QP snapshot replays stale")
				}
			})

		case KindHCAMismatch:
			hcas, err := in.pickHCAs(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				for _, t := range hcas {
					t.hca.InjectHCAMismatch()
					in.log(s.Kind, t.name, "next QP restore rejected: incompatible HCA")
				}
			})

		case KindNodeCrash:
			node, err := in.pickNode(s.Target)
			if err != nil {
				return err
			}
			in.schedule(s.At, func() {
				node.Fail()
				in.log(s.Kind, node.Name, "node down")
			})
			if s.For > 0 {
				in.schedule(s.At+s.For, func() { node.Restore() })
			}

		default:
			return fmt.Errorf("faults: unknown kind %q", s.Kind)
		}
	}
	// Install in name order: map iteration order must never reach the
	// simulation (hook installation is order-insensitive today, but a
	// sorted walk keeps any future cross-VM bookkeeping deterministic).
	vms := make([]*vmm.VM, 0, len(hooked))
	for vm := range hooked {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i].Name() < vms[j].Name() })
	for _, vm := range vms {
		in.installHooks(vm, hooked[vm])
	}
	return nil
}

// installHooks merges every VM-scoped spec for one VM into a single
// FaultHooks registration.
func (in *Injector) installHooks(vm *vmm.VM, specs []*armedSpec) {
	vm.SetFaultHooks(&vmm.FaultHooks{
		MigrationPass: func(v *vmm.VM, pass int) error {
			for _, a := range specs {
				if a.spec.Kind != KindMigrateAbort || !a.active(in.k.Now()) || pass != a.spec.pass() {
					continue
				}
				a.fired++
				in.log(a.spec.Kind, v.Name(), fmt.Sprintf("migration socket dropped at pass %d", pass))
				return fmt.Errorf("faults: injected socket drop at precopy pass %d", pass)
			}
			return nil
		},
		QMPExec: func(v *vmm.VM, execute string) *vmm.QMPError {
			for _, a := range specs {
				if a.spec.Kind != KindQMPError || !a.active(in.k.Now()) || execute != a.spec.arg("device_add") {
					continue
				}
				a.fired++
				in.log(a.spec.Kind, v.Name(), fmt.Sprintf("%s errored", execute))
				return &vmm.QMPError{
					Class: "GenericError",
					Desc:  fmt.Sprintf("faults: injected failure of %s", execute),
				}
			}
			return nil
		},
		DropEvent: func(v *vmm.VM, event string) bool {
			for _, a := range specs {
				if a.spec.Kind != KindDropEvent || !a.active(in.k.Now()) || event != a.spec.arg("DEVICE_DELETED") {
					continue
				}
				a.fired++
				in.log(a.spec.Kind, v.Name(), event+" swallowed")
				return true
			}
			return false
		},
	})
}

// schedule runs fn at absolute simulated time at (immediately when past).
func (in *Injector) schedule(at sim.Time, fn func()) {
	delay := at - in.k.Now()
	if delay < 0 {
		delay = 0
	}
	in.k.Schedule(delay, fn)
}

func (in *Injector) pickVM(target string) (*vmm.VM, error) {
	if len(in.env.VMs) == 0 {
		return nil, errors.New("faults: no VMs in environment")
	}
	vms := append([]*vmm.VM(nil), in.env.VMs...)
	sort.Slice(vms, func(i, j int) bool { return vms[i].Name() < vms[j].Name() })
	if target == "" {
		return vms[in.rng.Intn(len(vms))], nil
	}
	for _, vm := range vms {
		if vm.Name() == target {
			return vm, nil
		}
	}
	return nil, fmt.Errorf("faults: no VM named %q", target)
}

func (in *Injector) pickNode(target string) (*hw.Node, error) {
	if len(in.env.Nodes) == 0 {
		return nil, errors.New("faults: no nodes in environment")
	}
	if target == "" {
		return in.env.Nodes[0], nil
	}
	for _, n := range in.env.Nodes {
		if n.Name == target {
			return n, nil
		}
	}
	return nil, fmt.Errorf("faults: no node named %q", target)
}

// hcaTarget pairs an HCA with its node name for deterministic iteration.
type hcaTarget struct {
	name string
	hca  *fabric.HCA
}

// pickHCAs returns the targeted node's HCA, or every HCA-equipped node in
// the environment when target is empty — in environment (victim-list)
// order, never map order, so multi-victim firings log deterministically.
func (in *Injector) pickHCAs(target string) ([]hcaTarget, error) {
	if target != "" {
		n, err := in.pickNode(target)
		if err != nil {
			return nil, err
		}
		if n.HCA == nil {
			return nil, fmt.Errorf("faults: node %q has no HCA", target)
		}
		return []hcaTarget{{n.Name, n.HCA}}, nil
	}
	var out []hcaTarget
	for _, n := range in.env.Nodes {
		if n.HCA != nil {
			out = append(out, hcaTarget{n.Name, n.HCA})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("faults: no HCA-equipped nodes in environment")
	}
	return out, nil
}
